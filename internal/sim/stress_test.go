package sim

import (
	"math"
	"math/rand"
	"testing"
)

// The stress tests exercise the pooled calendar the way the cluster
// simulator does — dense schedule/cancel/fire interleavings with slot
// recycling — and assert the engine's core contracts: total (time, seq)
// order, exact Fired/Pending accounting, and Cancel safety against stale
// handles after the underlying slot has been reused.

// TestStressScheduleCancelFire drives randomized interleavings of
// scheduling, cancelling (before and after firing), and firing, and checks
// that fired events come out in nondecreasing time order with schedule
// order breaking ties, that cancelled events never fire, and that
// Fired/Pending agree with an independent count at every step.
func TestStressScheduleCancelFire(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()

		type scheduled struct {
			ev        Event
			when      Time
			order     int // schedule order, the tie-break within one instant
			cancelled bool
			fired     bool
		}
		var all []*scheduled
		firedSeq := make([]*scheduled, 0, 256)
		live := 0

		schedule := func() {
			s := &scheduled{when: e.Now() + rng.Float64()*10, order: len(all)}
			s.ev = e.At(s.when, func() { s.fired = true; firedSeq = append(firedSeq, s) })
			all = append(all, s)
			live++
		}

		for step := 0; step < 600; step++ {
			switch op := rng.Intn(10); {
			case op < 5: // schedule
				schedule()
			case op < 7 && len(all) > 0: // cancel a random event, fired or not
				s := all[rng.Intn(len(all))]
				wasLive := !s.fired && !s.cancelled
				s.ev.Cancel()
				if s.fired || s.cancelled {
					// Cancel after fire (or double cancel) must be a no-op —
					// in particular it must not kill whatever event now
					// occupies the recycled slot.
					s.ev.Cancel()
				} else {
					s.cancelled = true
				}
				if wasLive {
					live--
				}
			default: // fire
				before := e.Fired()
				if e.Step() {
					if e.Fired() != before+1 {
						t.Fatalf("seed %d: Fired went %d -> %d in one Step", seed, before, e.Fired())
					}
					live--
				} else if live != 0 {
					t.Fatalf("seed %d: Step()=false with %d live events", seed, live)
				}
			}
			if e.Pending() != live {
				t.Fatalf("seed %d step %d: Pending()=%d, tracked live=%d",
					seed, step, e.Pending(), live)
			}
		}
		e.Run()

		// Every event fired exactly once or was cancelled, never both.
		firedCount := 0
		for i, s := range all {
			if s.fired && s.cancelled {
				t.Fatalf("seed %d: event %d both fired and cancelled", seed, i)
			}
			if !s.fired && !s.cancelled {
				t.Fatalf("seed %d: event %d neither fired nor cancelled after Run", seed, i)
			}
			if s.fired {
				firedCount++
			}
		}
		if got := int(e.Fired()); got != firedCount {
			t.Fatalf("seed %d: engine Fired()=%d, observed %d callbacks", seed, got, firedCount)
		}
		if e.Pending() != 0 {
			t.Fatalf("seed %d: Pending()=%d after Run", seed, e.Pending())
		}

		// Total (time, schedule-order) order over the fired sequence.
		for i := 1; i < len(firedSeq); i++ {
			a, b := firedSeq[i-1], firedSeq[i]
			if a.when > b.when {
				t.Fatalf("seed %d: fired out of time order: %v then %v", seed, a.when, b.when)
			}
			if a.when == b.when && a.order > b.order {
				t.Fatalf("seed %d: tie at t=%v fired out of schedule order (%d before %d)",
					seed, a.when, a.order, b.order)
			}
		}
	}
}

// TestCancelledHandleSurvivesSlotReuse pins the generation-counter
// guarantee directly: after an event fires, its slot is recycled by the
// next schedule, and the stale handle's Cancel must not touch the new
// occupant.
func TestCancelledHandleSurvivesSlotReuse(t *testing.T) {
	e := NewEngine()
	stale := e.Schedule(1, func() {})
	if !e.Step() {
		t.Fatal("first event did not fire")
	}
	// The pool now has exactly one free slot; this schedule reuses it.
	fired := false
	fresh := e.Schedule(1, func() { fired = true })
	if fresh == stale {
		t.Fatal("recycled handle should differ by generation")
	}
	stale.Cancel() // must not cancel the fresh occupant
	e.Run()
	if !fired {
		t.Fatal("stale Cancel killed the event occupying the recycled slot")
	}
}

// TestWhenReportsScheduledTime covers the handle's When accessor across the
// slot lifecycle.
func TestWhenReportsScheduledTime(t *testing.T) {
	e := NewEngine()
	ev := e.Schedule(2.5, func() {})
	if got := ev.When(); got != 2.5 {
		t.Fatalf("When() = %v, want 2.5", got)
	}
	e.Run()
	if got := ev.When(); !math.IsNaN(got) {
		t.Fatalf("When() after fire = %v, want NaN", got)
	}
	if got := (Event{}).When(); !math.IsNaN(got) {
		t.Fatalf("zero Event When() = %v, want NaN", got)
	}
}

// TestStressNestedReschedule mixes self-rescheduling callbacks (the
// resource-completion pattern) with cancellations, under the race detector
// when enabled, to shake out pool corruption from callbacks that schedule
// into freshly recycled slots.
func TestStressNestedReschedule(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		var last Time
		fired := 0
		var pending []Event
		var tick func()
		tick = func() {
			if e.Now() < last {
				t.Fatalf("seed %d: clock went backwards %v -> %v", seed, last, e.Now())
			}
			last = e.Now()
			fired++
			if fired >= 5000 {
				return
			}
			// Fan out, and sometimes cancel an arbitrary pending event.
			for k := rng.Intn(3); k > 0; k-- {
				pending = append(pending, e.Schedule(rng.Float64(), tick))
			}
			if len(pending) > 0 && rng.Intn(4) == 0 {
				i := rng.Intn(len(pending))
				pending[i].Cancel()
				pending = append(pending[:i], pending[i+1:]...)
			}
		}
		e.Schedule(0, tick)
		e.Run()
		if e.Pending() != 0 {
			t.Fatalf("seed %d: Pending()=%d after Run", seed, e.Pending())
		}
	}
}
