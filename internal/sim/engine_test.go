package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestScheduleFiresInOrder(t *testing.T) {
	e := NewEngine()
	var got []float64
	for _, d := range []float64{3, 1, 2, 1.5} {
		d := d
		e.Schedule(d, func() { got = append(got, e.Now()) })
	}
	e.Run()
	want := []float64{1, 1.5, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSameTimeEventsFireInScheduleOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-broken order %v, want ascending schedule order", got)
		}
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(1, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Fired() != 0 {
		t.Fatalf("Fired() = %d, want 0", e.Fired())
	}
}

func TestCancelAfterFireIsNoop(t *testing.T) {
	e := NewEngine()
	ev := e.Schedule(1, func() {})
	e.Run()
	ev.Cancel() // must not panic
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Schedule(-1) did not panic")
		}
	}()
	NewEngine().Schedule(-1, func() {})
}

func TestAtInPastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(5, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("At(past) did not panic")
		}
	}()
	e.At(1, func() {})
}

func TestRunUntilAdvancesClock(t *testing.T) {
	e := NewEngine()
	var fired []float64
	e.Schedule(1, func() { fired = append(fired, e.Now()) })
	e.Schedule(10, func() { fired = append(fired, e.Now()) })
	e.RunUntil(5)
	if len(fired) != 1 || fired[0] != 1 {
		t.Fatalf("fired = %v, want [1]", fired)
	}
	if e.Now() != 5 {
		t.Fatalf("Now() = %v, want 5", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
	e.Run()
	if len(fired) != 2 || fired[1] != 10 {
		t.Fatalf("fired = %v, want [1 10]", fired)
	}
}

func TestRunLimit(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 10; i++ {
		e.Schedule(float64(i+1), func() { count++ })
	}
	if n := e.RunLimit(3); n != 3 {
		t.Fatalf("RunLimit(3) = %d", n)
	}
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if n := e.RunLimit(100); n != 7 {
		t.Fatalf("RunLimit(100) = %d, want 7", n)
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var times []float64
	e.Schedule(1, func() {
		times = append(times, e.Now())
		e.Schedule(1, func() {
			times = append(times, e.Now())
		})
	})
	e.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 2 {
		t.Fatalf("times = %v, want [1 2]", times)
	}
}

// Property: events always fire in nondecreasing time order, regardless of
// the order and values of the scheduled delays.
func TestPropertyMonotonicClock(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		var fired []float64
		count := int(n%64) + 1
		for i := 0; i < count; i++ {
			e.Schedule(rng.Float64()*100, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		return sort.Float64sAreSorted(fired) && len(fired) == count
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaving nested schedules preserves the monotonic clock.
func TestPropertyNestedMonotonicClock(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		ok := true
		last := -1.0
		var spawn func(depth int)
		spawn = func(depth int) {
			if e.Now() < last {
				ok = false
			}
			last = e.Now()
			if depth <= 0 {
				return
			}
			k := rng.Intn(3)
			for i := 0; i < k; i++ {
				e.Schedule(rng.Float64(), func() { spawn(depth - 1) })
			}
		}
		e.Schedule(0, func() { spawn(6) })
		e.Run()
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
