package sim

import (
	"math"
	"math/rand"
	"testing"
)

func addLoop(x, c Time, n uint64) Time {
	for ; n > 0; n-- {
		x += c
	}
	return x
}

// TestAddRepeatedMatchesLoop pins addRepeated to the naive loop bit for bit
// across the regimes that matter: accumulators from zero through many
// binades, addends from far-below-ulp to same-magnitude, counts from 0 to
// crossing several boundaries, plus adversarial tie addends constructed as
// exact half-ulp multiples.
func TestAddRepeatedMatchesLoop(t *testing.T) {
	check := func(x, c Time, n uint64) {
		t.Helper()
		got, want := addRepeated(x, c, n), addLoop(x, c, n)
		if got != want {
			t.Fatalf("addRepeated(%v, %v, %d) = %v, want %v (diff %v)", x, c, n, got, want, got-want)
		}
	}

	// The motivating case: microsecond message charges against seconds of
	// accumulated busy time.
	check(0, 6e-6, 1_000_000)
	check(0, 3e-6, 1_000_000)
	check(123.456, 6e-6, 500_000)
	check(0, 2e-6, 0)
	check(0, 2e-6, 1)
	check(1e300, 1e280, 10_000) // far binades, still exact

	// Addend absorbed entirely: x never moves.
	check(1e20, 1e-6, 1000)

	// Exact powers of two: additions are exact, boundary crossings sharp.
	check(1, 0.25, 100)
	check(1, math.Ldexp(1, -52), 10_000) // one-ulp steps across a binade

	// Adversarial ties: c an exact odd multiple of half the ulp, so every
	// addition lands exactly between grid points and round-to-even rules.
	for _, e := range []int{0, 10, -20} {
		x := Time(math.Ldexp(1.5, e))
		halfUlp := math.Ldexp(1, e-53)
		for _, mult := range []float64{1, 3, 5, 257} {
			check(x, Time(mult*halfUlp), 10_000)
		}
	}

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		x := Time(math.Ldexp(1+rng.Float64(), rng.Intn(40)-20))
		if rng.Intn(8) == 0 {
			x = 0
		}
		c := Time(math.Ldexp(1+rng.Float64(), rng.Intn(60)-50))
		n := uint64(rng.Intn(20_000))
		check(x, c, n)
	}

	// Large-count spot checks against the loop (kept few: the loop is the
	// slow side).
	check(0.5, 5.9e-6, 5_000_000)
	check(7, 3.1e-6, 5_000_000)
}
