package sim

import "fmt"

// ChargeBank defers fixed-size FCFS charges to a fleet of single-server
// resources, replacing one pointer-chase per charge (resource -> free slice
// -> busy field, a cache miss per receiver at 1024-node gossip fan-outs)
// with sequential arithmetic on two dense arrays.
//
// A deferred charge is the exact ChargeAt recurrence kept out of line:
// chain[i] = max(chain[i], at) + svc, where chain[i] mirrors what the
// resource's single-server free time would be after the charges booked so
// far. The resource itself is not touched until its next use — Acquire,
// ChargeAt, Utilization, BusyTime, or ResetStats — at which point the
// pending charges fold in (Resource.syncDeferred): free becomes the chain
// value, and busy replays one svc-sized addition per pending charge, in
// booking order. Because the fold always happens before any other read or
// write of free or busy, the interleaving of floating-point operations on
// the resource is exactly the eager sequence, so deferred and eager
// charging produce bit-identical simulations (pinned by
// TestChargeBankMatchesEager and, end to end, by
// TestFlattenedGossipEquivalence in internal/server).
//
// Each resource belongs to at most one bank, and all charges through a bank
// cost the same service time — the per-message NI and CPU overheads of a
// broadcast fan-out, in the motivating use.
type ChargeBank struct {
	svc   Time
	res   []*Resource
	chain []Time   // finish time of the last pending charge; valid iff count > 0
	count []uint32 // pending charges not yet folded into the resource

	// Prepare, when set, runs before any flush or direct charge at slot i,
	// giving the bank's owner a chance to materialize charges it has been
	// tracking in some cheaper closed form (see FoldDeferred) — the gossip
	// epoch layer in internal/netsim tracks whole broadcast rounds without
	// touching per-node state and folds them here, lazily, when a node's
	// resources are next used. Prepare may call FoldDeferred and ChargeAt on
	// this bank but must not touch the resources themselves.
	Prepare func(i int32)

	// Ready, when set alongside Prepare, lets the owner mark slots whose
	// Prepare call would be a no-op: syncDeferred skips the call while
	// Ready[i] is true. The owner keeps the slice current — typically it is
	// the owner's own "already materialized" flag array, shared by
	// reference. Purely an optimization: skipping a vacuous Prepare cannot
	// change any charge.
	Ready []bool
}

// NewChargeBank builds a bank over the given single-server resources,
// charging svc seconds per deferred charge. It panics on a multi-server
// resource, a resource already in a bank, or a non-positive service time.
func NewChargeBank(svc Time, res []*Resource) *ChargeBank {
	if svc <= 0 {
		panic(fmt.Sprintf("sim: charge bank with non-positive service %v", svc))
	}
	b := &ChargeBank{
		svc:   svc,
		res:   res,
		chain: make([]Time, len(res)),
		count: make([]uint32, len(res)),
	}
	for i, r := range res {
		if len(r.free) != 1 {
			panic(fmt.Sprintf("sim: charge bank needs single-server resources, %q has %d", r.name, len(r.free)))
		}
		if r.bank != nil {
			panic(fmt.Sprintf("sim: resource %q already belongs to a charge bank", r.name))
		}
		r.bank, r.bankID = b, int32(i)
	}
	return b
}

// ChargeAt books one deferred svc-second charge at slot i, arriving at time
// at, and returns the finish time — exactly what res[i].ChargeAt(at, svc)
// would return, with the resource-state writes deferred to its next use.
func (b *ChargeBank) ChargeAt(i int, at Time) Time {
	if b.count[i] == 0 {
		b.chain[i] = b.res[i].free[0]
	}
	c := b.chain[i]
	if c < at {
		c = at
	}
	c += b.svc
	b.chain[i] = c
	b.count[i]++
	return c
}

// FoldDeferred books n deferred charges at slot i whose combined effect the
// caller already knows in closed form: the pending chain becomes chain and
// the pending count grows by n, without walking the intermediate per-charge
// recurrence. The caller owns the exactness obligation — chain must be
// bit-identical to what n successive ChargeAt calls would have left, which
// holds whenever each of the n charges is known to have arrived at or after
// the chain it extended (the charge then finishes at its own arrival plus
// svc, independent of history). The next flush replays the n busy additions
// exactly as if they had been booked individually.
func (b *ChargeBank) FoldDeferred(i int, chain Time, n uint32) {
	b.chain[i] = chain
	b.count[i] += n
}

// syncDeferred materializes any pending deferred charges into the resource.
// Every method that reads or writes free or busy calls this first, so a
// banked resource is indistinguishable from an eagerly charged one.
func (r *Resource) syncDeferred() {
	if b := r.bank; b != nil {
		if b.Prepare != nil && (b.Ready == nil || !b.Ready[r.bankID]) {
			b.Prepare(r.bankID)
		}
		if b.count[r.bankID] != 0 {
			r.flushDeferred()
		}
	}
}

// flushDeferred applies the pending charges: the single server's free time
// becomes the chain value, and busy advances by one svc-sized addition per
// charge — the same float additions, in the same order, that eager charging
// would have performed (there was no interleaving use of the resource, or
// the pending set would already have been flushed). The replay itself runs
// through addRepeated, which collapses the n identical additions to a
// handful of exact closed-form jumps: epoch-folded gossip rounds can leave
// millions of pending charges per node, and looping them would cost more
// than the charging they replace.
func (r *Resource) flushDeferred() {
	b := r.bank
	n := b.count[r.bankID]
	b.count[r.bankID] = 0
	r.free[0] = b.chain[r.bankID]
	r.busy = addRepeated(r.busy, b.svc, uint64(n))
}
