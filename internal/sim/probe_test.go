package sim

import (
	"math"
	"testing"
)

// TestProbeFiresOnBoundaries: a probe samples after the first event at or
// past each multiple of its interval, and a long gap collapses to one
// firing.
func TestProbeFiresOnBoundaries(t *testing.T) {
	e := NewEngine()
	var times []Time
	e.Probe(1.0, func(now Time) { times = append(times, now) })
	for _, at := range []Time{0.5, 0.9, 1.1, 1.2, 2.0, 5.5} {
		e.At(at, func() {})
	}
	e.Run()
	// Boundaries crossed: 1.0 (by the event at 1.1), 2.0 (event at 2.0),
	// 3,4,5 all collapsed into the event at 5.5.
	want := []Time{1.1, 2.0, 5.5}
	if len(times) != len(want) {
		t.Fatalf("probe fired at %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("probe fired at %v, want %v", times, want)
		}
	}
}

// TestProbeDoesNotPerturbEngine: registering a probe changes no observable
// engine state — same event count, same pending, same clock.
func TestProbeDoesNotPerturbEngine(t *testing.T) {
	run := func(withProbe bool) (fired uint64, now Time) {
		e := NewEngine()
		if withProbe {
			e.Probe(0.25, func(Time) {})
		}
		var rec func()
		n := 0
		rec = func() {
			n++
			if n < 50 {
				e.Schedule(0.1, rec)
			}
		}
		e.Schedule(0, rec)
		e.Run()
		return e.Fired(), e.Now()
	}
	f0, t0 := run(false)
	f1, t1 := run(true)
	if f0 != f1 || t0 != t1 {
		t.Fatalf("probe perturbed the engine: fired %d vs %d, now %v vs %v", f0, f1, t0, t1)
	}
}

// TestProbeRunUntil: advancing the clock with RunUntil past a probe
// boundary fires the probe at the target time.
func TestProbeRunUntil(t *testing.T) {
	e := NewEngine()
	var times []Time
	e.Probe(1.0, func(now Time) { times = append(times, now) })
	e.At(0.5, func() {})
	e.RunUntil(3.5)
	if len(times) != 1 || times[0] != 3.5 {
		t.Fatalf("probe fired at %v, want [3.5]", times)
	}
	if e.Now() != 3.5 {
		t.Fatalf("now = %v", e.Now())
	}
}

// TestProbeSeesPostEventState: the probe observes state after the crossing
// event's callback ran.
func TestProbeSeesPostEventState(t *testing.T) {
	e := NewEngine()
	state := 0
	var seen []int
	e.Probe(1.0, func(Time) { seen = append(seen, state) })
	e.At(1.0, func() { state = 1 })
	e.At(2.0, func() { state = 2 })
	e.Run()
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 2 {
		t.Fatalf("probe saw %v, want [1 2]", seen)
	}
}

func TestProbePanics(t *testing.T) {
	e := NewEngine()
	for _, iv := range []Time{0, -1, math.NaN(), math.Inf(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Probe(%v) did not panic", iv)
				}
			}()
			e.Probe(iv, func(Time) {})
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("Probe with nil fn did not panic")
			}
		}()
		e.Probe(1, nil)
	}()
}

// TestProbeAllocFree: steady-state probe dispatch must not allocate (the
// zero-cost requirement extends to the enabled path's dispatch machinery;
// what the callback itself does is the caller's business).
func TestProbeAllocFree(t *testing.T) {
	e := NewEngine()
	var fired int
	e.Probe(1, func(Time) { fired++ })
	tick := func() {}
	next := Time(1)
	allocs := testing.AllocsPerRun(100, func() {
		e.At(next, tick)
		e.Step()
		next++
	})
	// Allow the event-slot pool and heap to have warmed up: after the first
	// iterations nothing may allocate.
	if allocs > 0 {
		t.Fatalf("probe dispatch allocates %v per event", allocs)
	}
	if fired == 0 {
		t.Fatalf("probe never fired")
	}
}
