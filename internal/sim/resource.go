package sim

import "fmt"

// Resource is a first-come-first-served service center with one or more
// identical servers and an unbounded queue, the building block for the
// M/M/1-style service centers of the paper's Figure 2 (CPU, disk, network
// interfaces, router).
//
// Acquire is non-blocking: it enqueues a job with a known service demand and
// invokes the completion callback when the job finishes. Because service is
// FCFS and demands are known at arrival, the resource tracks only the time
// each server next becomes free, which is both exact and allocation-light.
type Resource struct {
	eng  *Engine
	name string

	free  []Time  // next-free time per server, kept as a sorted-min loop (k is tiny)
	free1 [1]Time // in-struct backing for the single-server common case, so
	// free[0] shares the resource's cache lines instead of costing a
	// dependent miss on every acquire, charge, and completion

	// Statistics.
	busy      Time    // total service time accrued (per-server seconds)
	completed uint64  // jobs completed
	inSystem  int     // jobs queued or in service
	maxQueue  int     // high-water mark of inSystem
	areaQ     float64 // integral of inSystem over time, for mean jobs-in-system
	lastT     Time    // last time areaQ was updated
	epoch     Time    // start of the current measurement interval

	// Deferred-charge membership (see ChargeBank): nil for the common
	// eagerly charged resource. Every free/busy access syncs first.
	bank   *ChargeBank
	bankID int32
}

// NewResource returns a FCFS resource with the given number of identical
// servers (usually 1).
func NewResource(eng *Engine, name string, servers int) *Resource {
	if servers < 1 {
		panic(fmt.Sprintf("sim: resource %q needs at least one server", name))
	}
	r := &Resource{eng: eng, name: name}
	if servers == 1 {
		r.free = r.free1[:]
	} else {
		r.free = make([]Time, servers)
	}
	return r
}

// Name returns the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// Acquire enqueues a job that needs service seconds of work and calls done
// (if non-nil) when the job completes. It returns the completion time.
func (r *Resource) Acquire(service Time, done func()) Time {
	if service < 0 {
		panic(fmt.Sprintf("sim: resource %q acquire with negative service %v", r.name, service))
	}
	r.syncDeferred()
	now := r.eng.Now()
	r.accumulate(now)
	r.inSystem++
	if r.inSystem > r.maxQueue {
		r.maxQueue = r.inSystem
	}

	// Pick the server that frees up first.
	best := 0
	for i := 1; i < len(r.free); i++ {
		if r.free[i] < r.free[best] {
			best = i
		}
	}
	start := r.free[best]
	if start < now {
		start = now
	}
	finish := start + service
	r.free[best] = finish
	r.busy += service

	// A completion event carries (r, done) in its pooled slot rather than a
	// closure, so Acquire itself never allocates.
	r.eng.atCompletion(finish, r, done)
	return finish
}

// ChargeAt books service seconds of FCFS work arriving at time at — which
// may lie in the simulated past or future — without scheduling a completion
// event. The job starts when the earliest-free server is free or at `at`,
// whichever is later, exactly as a same-instant Acquire would; busy time and
// the per-server free times advance identically. It returns the finish time.
//
// This is the arithmetic half of batched fan-out: a broadcast charges each
// endpoint's resources with ChargeAt and schedules one pooled event at the
// latest finish, instead of one completion event per endpoint per stage.
// Because no event fires, the charge is invisible to the queue-length
// statistics (inSystem, areaQ, Completed) — callers that batch trade those
// per-message samples for the O(1) event count, but utilization and busy
// time stay exact.
func (r *Resource) ChargeAt(at, service Time) Time {
	if service < 0 {
		panic(fmt.Sprintf("sim: resource %q charge with negative service %v", r.name, service))
	}
	r.syncDeferred()
	best := 0
	for i := 1; i < len(r.free); i++ {
		if r.free[i] < r.free[best] {
			best = i
		}
	}
	start := r.free[best]
	if start < at {
		start = at
	}
	finish := start + service
	r.free[best] = finish
	r.busy += service
	return finish
}

// complete retires one job when its completion event fires.
func (r *Resource) complete(done func()) {
	r.accumulate(r.eng.Now())
	r.inSystem--
	r.completed++
	if done != nil {
		done()
	}
}

func (r *Resource) accumulate(now Time) {
	if now > r.lastT {
		r.areaQ += float64(r.inSystem) * (now - r.lastT)
		r.lastT = now
	}
}

// Utilization returns the fraction of capacity used over [0, now]: accrued
// service time divided by elapsed time times the number of servers.
func (r *Resource) Utilization() float64 {
	r.syncDeferred()
	elapsed := r.eng.Now() - r.epoch
	if elapsed <= 0 {
		return 0
	}
	return float64(r.busy) / (float64(elapsed) * float64(len(r.free)))
}

// BusyTime returns the total service time accrued across all servers.
func (r *Resource) BusyTime() Time {
	r.syncDeferred()
	return r.busy
}

// Completed returns the number of jobs that finished service.
func (r *Resource) Completed() uint64 { return r.completed }

// InSystem returns the number of jobs queued or in service right now.
func (r *Resource) InSystem() int { return r.inSystem }

// MaxInSystem returns the high-water mark of jobs queued or in service.
func (r *Resource) MaxInSystem() int { return r.maxQueue }

// MeanInSystem returns the time-average number of jobs in the resource.
func (r *Resource) MeanInSystem() float64 {
	now := r.eng.Now()
	elapsed := now - r.epoch
	if elapsed <= 0 {
		return 0
	}
	area := r.areaQ + float64(r.inSystem)*float64(now-r.lastT)
	return area / float64(elapsed)
}

// ResetStats zeroes the counters while preserving in-flight work, so that a
// measurement interval can start after cache warm-up.
func (r *Resource) ResetStats() {
	r.syncDeferred()
	now := r.eng.Now()
	r.accumulate(now)
	// Busy time already committed for queued jobs extends past now; keep the
	// portion that lies in the future so utilization stays exact.
	var future Time
	for _, f := range r.free {
		if f > now {
			future += f - now
		}
	}
	r.busy = future
	r.completed = 0
	r.maxQueue = r.inSystem
	r.areaQ = 0
	r.lastT = now
	r.epoch = now
}
