// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine is the substrate under the trace-driven cluster simulator of
// Section 5 of the paper: it owns the virtual clock, an event calendar
// ordered by (time, insertion sequence), and first-come-first-served
// resources with exact queueing and utilization accounting.
//
// The engine is single-threaded by design. Simulations of queueing systems
// need a total order over events to be reproducible, so all model code runs
// on the goroutine that calls Run, and two events scheduled for the same
// instant fire in the order they were scheduled.
//
// The calendar is allocation-free in steady state. Resource completions —
// the bulk of all events — are plain values carried inline in the calendar
// entries; cancellable callback events live in a pooled slot array reached
// through the entry's packed key, so scheduling and firing never touch the
// garbage collector once the pool has grown to the simulation's high-water
// mark. Event handles carry the scheduling sequence number, which keeps
// Cancel safe (a no-op) after the event has fired and its slot has been
// recycled.
package sim

import (
	"fmt"
	"math"
)

// Time is simulated time in seconds since the start of the run.
type Time = float64

// Event is a cancellable handle to a scheduled callback. It is a small
// value; copying it copies the handle, not the event. The zero Event is
// inert: Cancel on it is a no-op.
type Event struct {
	eng  *Engine
	slot int32
	seq  uint64
}

// When returns the simulated time at which the event is scheduled to fire,
// or NaN if it already fired or was cancelled.
func (ev Event) When() Time {
	if ev.eng == nil || ev.eng.slots[ev.slot].seq != ev.seq {
		return math.NaN()
	}
	return ev.eng.slots[ev.slot].when
}

// Cancel prevents the event from firing. Cancelling an event that already
// fired or was already cancelled is a no-op: the sequence number in the
// handle no longer matches the recycled slot's.
func (ev Event) Cancel() {
	if ev.eng == nil {
		return
	}
	s := &ev.eng.slots[ev.slot]
	if s.seq != ev.seq {
		return
	}
	ev.eng.pending--
	ev.eng.freeSlot(ev.slot)
}

// invalidSeq marks a free slot. push never assigns it (the sequence counter
// is bounded far below), so a freed slot matches no outstanding handle and
// no stale calendar entry.
const invalidSeq = ^uint64(0)

// eventSlot is pooled per-event state for cancellable callback events
// (Schedule/At). A slot is live between schedule and fire/cancel; seq holds
// the scheduling sequence number while live and invalidSeq while free,
// which invalidates stale handles and stale heap entries alike. Resource
// completions never take a slot — they ride inline in the calendar entry
// (see heapEntry).
//
// Releasing a slot deliberately leaves its fn pointer in place: a freed
// slot's callback is never invoked (the seq mismatch retires its entry
// first), and skipping the nil store keeps the release path free of GC
// write barriers. The pointer a retired slot pins is a pooled job or
// method-value callback of the model, which lives for the whole run anyway.
type eventSlot struct {
	when Time
	seq  uint64
	fn   func()
	next int32 // free-list link while the slot is free
}

// Calendar-key layout: seq in the high bits, slot index in the low bits.
// Comparing keys compares seq first, and seq is unique, so key order IS
// schedule order; the slot bits ride along for free. Completion entries
// carry no slot and leave the low bits zero — harmless, since seq alone
// decides every comparison.
const (
	slotBits = 20
	maxSlots = 1 << slotBits // 1M simultaneously pending events
	seqShift = slotBits
	maxSeq   = uint64(1)<<(64-seqShift) - 1 // ~1.7e13 schedulings per engine
)

// heapEntry is one calendar entry: the firing time, a packed key holding
// (sequence, slot), and — for resource completions, the overwhelming bulk
// of calendar traffic — the completion target carried inline. Inlining
// (res, done) costs sixteen extra bytes per entry but spares completions
// the pooled slot round-trip entirely: no slot allocate/free per job, and
// no random load into the slot array on every peek to check staleness
// (completions have no handle, so they can never be cancelled and are
// always live). Cancellable callback events keep res nil and reach their
// callback through the slot named in the key.
type heapEntry struct {
	when Time
	key  uint64
	res  *Resource // completion target, nil for callback events
	done func()    // completion callback (may be nil); unused for callback events
}

// before orders entries by (when, seq); the slot bits in the low end of
// the key never matter because seq alone is unique.
func (a heapEntry) before(b heapEntry) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.key < b.key
}

func (en heapEntry) slot() int32      { return int32(en.key & (maxSlots - 1)) }
func (en heapEntry) entrySeq() uint64 { return en.key >> seqShift }

// probe is an observation hook that fires outside the event calendar (see
// Engine.Probe).
type probe struct {
	every Time
	next  Time
	fn    func(Time)
}

// stagedCap bounds the staging buffer in front of the heap. Sixteen
// entries (four cache lines) absorb the bursts of back-to-back near-term
// events the model produces (message hops, CPU chunks) with room to spare;
// larger buffers make the worst-case insertion shift exceed what they save.
const stagedCap = 16

// Engine is a discrete-event simulator: a clock plus an event calendar.
// The zero value is not usable; call NewEngine.
//
// The calendar is a binary heap fronted by a small sorted staging buffer
// (descending, so the minimum is its last element). New events
// insertion-sort into the buffer; a pop takes the smaller of the buffer's
// minimum and the heap root, so the fire order is still exactly minimal in
// (when, seq) — bit-identical to a pure heap by construction. The buffer
// pays off because of a strong property of queueing models: most scheduled
// events are near-term (a message hop a few microseconds out, a CPU chunk
// on an idle resource) while the heap holds far-out completions, so the
// freshly pushed event is very often the next to fire — it appends to the
// buffer with one comparison and pops from it with another, never paying a
// sift. Only events that linger long enough for the buffer to fill around
// them overflow into the heap, once.
type Engine struct {
	now     Time
	seq     uint64
	staged  [stagedCap]heapEntry // sorted descending: the minimum is last
	nstaged int
	heap    []heapEntry
	slots   []eventSlot
	free    int32 // head of the slot free list, -1 when empty
	pending int   // scheduled, uncancelled, unfired events
	fired   uint64
	probes  []probe
}

// NewEngine returns an engine with the clock at zero and an empty calendar.
func NewEngine() *Engine {
	return &Engine{free: -1}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have fired so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are scheduled but have not fired or been
// cancelled.
func (e *Engine) Pending() int { return e.pending }

// Schedule runs fn after delay units of simulated time. A negative delay is
// an error in the model; it panics rather than silently reordering history.
func (e *Engine) Schedule(delay Time, fn func()) Event {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("sim: schedule with invalid delay %v at t=%v", delay, e.now))
	}
	return e.At(e.now+delay, fn)
}

// At runs fn at absolute simulated time t, which must not be in the past.
func (e *Engine) At(t Time, fn func()) Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	slot := e.allocSlot()
	s := &e.slots[slot]
	s.when = t
	s.fn = fn
	seq := e.push(heapEntry{when: t, key: uint64(uint32(slot))})
	s.seq = seq
	return Event{eng: e, slot: slot, seq: seq}
}

// atCompletion schedules a resource-completion event: when it fires, r
// retires one job and then calls done. The pair rides inline in the
// calendar entry — no slot, no closure — so Resource.Acquire stays
// allocation-free and the completion never pays the slot pool's
// bookkeeping.
func (e *Engine) atCompletion(t Time, r *Resource, done func()) {
	e.push(heapEntry{when: t, res: r, done: done})
}

// allocSlot takes a slot from the free list, growing the pool if none is
// free.
func (e *Engine) allocSlot() int32 {
	if e.free >= 0 {
		slot := e.free
		e.free = e.slots[slot].next
		return slot
	}
	if len(e.slots) >= maxSlots {
		panic(fmt.Sprintf("sim: more than %d events pending", maxSlots))
	}
	e.slots = append(e.slots, eventSlot{next: -1, seq: invalidSeq})
	return int32(len(e.slots) - 1)
}

// freeSlot releases a slot back to the pool. Resetting seq invalidates
// every outstanding handle and heap entry that still names the slot. The
// callback pointers stay behind on purpose (see eventSlot): this function
// writes only scalars, so releasing an event costs no GC write barrier.
func (e *Engine) freeSlot(slot int32) {
	s := &e.slots[slot]
	s.seq = invalidSeq
	s.next = e.free
	e.free = slot
}

// push stages a calendar entry. The caller fills when, the low key bits
// (slot index for callback events, zero for completions), and any inline
// completion state; push assigns the sequence number and returns it.
func (e *Engine) push(en heapEntry) uint64 {
	seq := e.seq
	if seq > maxSeq {
		panic("sim: scheduling sequence numbers exhausted")
	}
	e.seq++
	e.pending++
	if e.nstaged == stagedCap {
		e.flushStaged()
	}
	en.key |= seq << seqShift
	// An entry due no earlier than the staged maximum goes straight to the
	// heap: it would only ride the buffer until the next flush anyway, and
	// filing it first means shifting every nearer entry out of its way. At
	// saturation most pushes are far-future queue-tail completions, so this
	// branch keeps the buffer holding near-term work. The buffer/heap split
	// is free to vary — peekLive takes the minimum of both — so any
	// partition yields the identical popped sequence.
	if e.nstaged > 0 && !en.before(e.staged[0]) {
		e.heap = append(e.heap, en)
		e.siftUp(len(e.heap) - 1)
		return seq
	}
	// Insertion-sort into the descending buffer. The common near-term push
	// is a new minimum, which lands at the end after a single failed
	// comparison.
	p := e.nstaged
	for p > 0 && e.staged[p-1].before(en) {
		e.staged[p] = e.staged[p-1]
		p--
	}
	e.staged[p] = en
	e.nstaged++
	return seq
}

// flushStaged spills the staging buffer into the heap. Entries that make
// it here are the long-lived ones; each pays its sift exactly once.
func (e *Engine) flushStaged() {
	for i := 0; i < e.nstaged; i++ {
		e.heap = append(e.heap, e.staged[i])
		e.siftUp(len(e.heap) - 1)
	}
	e.nstaged = 0
}

func (e *Engine) siftUp(i int) {
	h := e.heap
	entry := h[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !entry.before(h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = entry
}

// popMin removes and returns the root entry.
//
// The displaced last element is reinserted bottom-up (Wegener's heapsort
// refinement): the hole at the root first descends the min-child path with
// one comparison per level, then the element bubbles up from the leaf. The
// last element of a heap is almost always among its largest, so the upward
// phase usually ends immediately — about half the comparisons of the
// classic descent, which compares the element against both children at
// every level. The heap's shape after the pop can differ from the classic
// variant's, but every shape is a valid heap over the same strict total
// order (when, seq), so the sequence of popped minima — the only thing the
// simulation observes — is identical.
func (e *Engine) popMin() heapEntry {
	h := e.heap
	top := h[0]
	last := len(h) - 1
	entry := h[last]
	e.heap = h[:last]
	if last == 0 {
		return top
	}
	h = h[:last]
	n := last
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && h[c+1].before(h[c]) {
			c++
		}
		h[i] = h[c]
		i = c
	}
	for i > 0 {
		parent := (i - 1) / 2
		if !entry.before(h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = entry
	return top
}

// peekLive returns the (when, seq)-minimal live calendar entry across the
// staging buffer and the heap, discarding stale entries (cancelled events,
// detected by the sequence mismatch against the slot) as it finds them.
// fromStaged reports where the entry lives — the buffer's minimum is its
// last element, the heap's is its root — so the caller can remove exactly
// that entry. ok is false when the calendar is empty.
func (e *Engine) peekLive() (fromStaged bool, entry heapEntry, ok bool) {
	for {
		has := false
		if len(e.heap) > 0 {
			entry = e.heap[0]
			has = true
		}
		fromStaged = false
		if e.nstaged > 0 {
			if s := e.staged[e.nstaged-1]; !has || s.before(entry) {
				entry = s
				fromStaged = true
				has = true
			}
		}
		if !has {
			return false, heapEntry{}, false
		}
		// Completions are always live: they carry no handle, so nothing can
		// cancel them. Only callback events need the slot staleness check.
		if entry.res != nil || e.slots[entry.slot()].seq == entry.entrySeq() {
			return fromStaged, entry, true
		}
		e.removeTop(fromStaged)
	}
}

// removeTop removes the calendar entry peekLive located: the buffer's
// minimum is shed by shrinking the buffer (it is sorted descending), the
// heap's by popping the root.
func (e *Engine) removeTop(fromStaged bool) {
	if fromStaged {
		e.nstaged--
		return
	}
	e.popMin()
}

// Probe registers an observation hook that fires whenever the clock
// crosses a multiple of every, with the time of the event that crossed the
// boundary. Probes run after the crossing event's callback, entirely
// outside the event calendar: they schedule nothing, allocate nothing, and
// leave the event sequence, Pending, and Fired counts untouched, so an
// instrumented run replays bit-identically to an uninstrumented one. A
// probe that lags several boundaries behind (sparse calendars) fires once,
// at the current time. Disabled cost is one slice-length check per Step.
func (e *Engine) Probe(every Time, fn func(Time)) {
	if !(every > 0) || math.IsInf(every, 0) {
		panic(fmt.Sprintf("sim: probe interval must be positive and finite, got %v", every))
	}
	if fn == nil {
		panic("sim: probe needs a callback")
	}
	e.probes = append(e.probes, probe{every: every, next: e.now + every, fn: fn})
}

// runProbes fires every probe whose boundary the clock has reached.
func (e *Engine) runProbes() {
	for i := range e.probes {
		p := &e.probes[i]
		if p.next > e.now {
			continue
		}
		for p.next <= e.now {
			p.next += p.every
		}
		p.fn(e.now)
	}
}

// Step fires the next event. It reports false when the calendar is empty.
func (e *Engine) Step() bool {
	fromStaged, entry, ok := e.peekLive()
	if !ok {
		return false
	}
	e.fire(fromStaged, entry)
	return true
}

// fire removes the entry peekLive located and runs its callback.
func (e *Engine) fire(fromStaged bool, entry heapEntry) {
	e.removeTop(fromStaged)
	if entry.when < e.now {
		panic("sim: time went backwards")
	}
	e.pending--
	e.now = entry.when
	e.fired++
	if entry.res != nil {
		entry.res.complete(entry.done)
	} else {
		// Copy the callback out and release the slot before invoking it: the
		// callback is free to schedule new events into the recycled slot.
		slot := entry.slot()
		fn := e.slots[slot].fn
		e.freeSlot(slot)
		fn()
	}
	if len(e.probes) != 0 {
		e.runProbes()
	}
}

// Run fires events until the calendar is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with timestamps at or before t, then advances the
// clock to t. Events scheduled for later instants remain pending.
func (e *Engine) RunUntil(t Time) {
	for {
		fromStaged, entry, ok := e.peekLive()
		if !ok || entry.when > t {
			break
		}
		e.fire(fromStaged, entry)
	}
	if t > e.now {
		e.now = t
		if len(e.probes) != 0 {
			e.runProbes()
		}
	}
}

// RunLimit fires at most n events; it reports how many actually fired.
func (e *Engine) RunLimit(n uint64) uint64 {
	var fired uint64
	for fired < n && e.Step() {
		fired++
	}
	return fired
}
