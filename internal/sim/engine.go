// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine is the substrate under the trace-driven cluster simulator of
// Section 5 of the paper: it owns the virtual clock, an event calendar
// ordered by (time, insertion sequence), and first-come-first-served
// resources with exact queueing and utilization accounting.
//
// The engine is single-threaded by design. Simulations of queueing systems
// need a total order over events to be reproducible, so all model code runs
// on the goroutine that calls Run, and two events scheduled for the same
// instant fire in the order they were scheduled.
//
// The calendar is allocation-free in steady state: events live in a pooled
// slot array reached through a slice-backed binary heap of plain values, so
// scheduling and firing never touch the garbage collector once the pool has
// grown to the simulation's high-water mark. Event handles carry a
// generation counter, which keeps Cancel safe (a no-op) after the event has
// fired and its slot has been recycled.
package sim

import (
	"fmt"
	"math"
)

// Time is simulated time in seconds since the start of the run.
type Time = float64

// Event is a cancellable handle to a scheduled callback. It is a small
// value; copying it copies the handle, not the event. The zero Event is
// inert: Cancel on it is a no-op.
type Event struct {
	eng  *Engine
	slot int32
	gen  uint32
}

// When returns the simulated time at which the event is scheduled to fire,
// or NaN if it already fired or was cancelled.
func (ev Event) When() Time {
	if ev.eng == nil || ev.eng.slots[ev.slot].gen != ev.gen {
		return math.NaN()
	}
	return ev.eng.slots[ev.slot].when
}

// Cancel prevents the event from firing. Cancelling an event that already
// fired or was already cancelled is a no-op: the generation counter in the
// handle no longer matches the recycled slot's.
func (ev Event) Cancel() {
	if ev.eng == nil {
		return
	}
	s := &ev.eng.slots[ev.slot]
	if s.gen != ev.gen {
		return
	}
	ev.eng.pending--
	ev.eng.freeSlot(ev.slot)
}

// eventSlot is pooled per-event state. A slot is live between schedule and
// fire/cancel; gen increments on every release, invalidating stale handles
// and stale heap entries alike.
//
// A slot carries either a generic callback (fn) or a resource completion
// (res + done). Resource completions are common enough — every Acquire
// schedules one — that representing them directly saves a closure per job.
type eventSlot struct {
	when Time
	fn   func()
	res  *Resource
	done func()
	gen  uint32
	next int32 // free-list link while the slot is free
}

// heapEntry is one calendar entry: the ordering key as plain values plus
// the slot it refers to. Comparisons never chase a pointer, and pushing or
// popping moves 24-byte values within one slice.
type heapEntry struct {
	when Time
	seq  uint64
	slot int32
	gen  uint32
}

func (a heapEntry) before(b heapEntry) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

// probe is an observation hook that fires outside the event calendar (see
// Engine.Probe).
type probe struct {
	every Time
	next  Time
	fn    func(Time)
}

// Engine is a discrete-event simulator: a clock plus an event calendar.
// The zero value is not usable; call NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	heap    []heapEntry
	slots   []eventSlot
	free    int32 // head of the slot free list, -1 when empty
	pending int   // scheduled, uncancelled, unfired events
	fired   uint64
	probes  []probe
}

// NewEngine returns an engine with the clock at zero and an empty calendar.
func NewEngine() *Engine {
	return &Engine{free: -1}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have fired so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are scheduled but have not fired or been
// cancelled.
func (e *Engine) Pending() int { return e.pending }

// Schedule runs fn after delay units of simulated time. A negative delay is
// an error in the model; it panics rather than silently reordering history.
func (e *Engine) Schedule(delay Time, fn func()) Event {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("sim: schedule with invalid delay %v at t=%v", delay, e.now))
	}
	return e.At(e.now+delay, fn)
}

// At runs fn at absolute simulated time t, which must not be in the past.
func (e *Engine) At(t Time, fn func()) Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	slot := e.allocSlot()
	s := &e.slots[slot]
	s.when = t
	s.fn = fn
	e.push(t, slot, s.gen)
	return Event{eng: e, slot: slot, gen: s.gen}
}

// atCompletion schedules a resource-completion event: when it fires, r
// retires one job and then calls done. Storing the pair in the slot instead
// of a closure keeps Resource.Acquire allocation-free.
func (e *Engine) atCompletion(t Time, r *Resource, done func()) {
	slot := e.allocSlot()
	s := &e.slots[slot]
	s.when = t
	s.res = r
	s.done = done
	e.push(t, slot, s.gen)
}

// allocSlot takes a slot from the free list, growing the pool if none is
// free.
func (e *Engine) allocSlot() int32 {
	if e.free >= 0 {
		slot := e.free
		e.free = e.slots[slot].next
		return slot
	}
	e.slots = append(e.slots, eventSlot{next: -1})
	return int32(len(e.slots) - 1)
}

// freeSlot releases a slot back to the pool. Bumping gen invalidates every
// outstanding handle and heap entry that still names the slot.
func (e *Engine) freeSlot(slot int32) {
	s := &e.slots[slot]
	s.fn = nil
	s.res = nil
	s.done = nil
	s.gen++
	s.next = e.free
	e.free = slot
}

// push appends a calendar entry and restores the heap order.
func (e *Engine) push(t Time, slot int32, gen uint32) {
	e.heap = append(e.heap, heapEntry{when: t, seq: e.seq, slot: slot, gen: gen})
	e.seq++
	e.pending++
	e.siftUp(len(e.heap) - 1)
}

func (e *Engine) siftUp(i int) {
	h := e.heap
	entry := h[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !entry.before(h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = entry
}

// popMin removes and returns the root entry. The caller checks staleness.
func (e *Engine) popMin() heapEntry {
	h := e.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	e.heap = h[:last]
	if last > 0 {
		e.siftDown(0)
	}
	return top
}

func (e *Engine) siftDown(i int) {
	h := e.heap
	n := len(h)
	entry := h[i]
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && h[r].before(h[child]) {
			child = r
		}
		if !h[child].before(entry) {
			break
		}
		h[i] = h[child]
		i = child
	}
	h[i] = entry
}

// nextLive pops stale entries (whose event was cancelled and whose slot has
// been recycled, detected by the generation mismatch) until the root is
// live. It reports false when the calendar is empty.
func (e *Engine) nextLive() bool {
	for len(e.heap) > 0 {
		if e.slots[e.heap[0].slot].gen == e.heap[0].gen {
			return true
		}
		e.popMin()
	}
	return false
}

// Probe registers an observation hook that fires whenever the clock
// crosses a multiple of every, with the time of the event that crossed the
// boundary. Probes run after the crossing event's callback, entirely
// outside the event calendar: they schedule nothing, allocate nothing, and
// leave the event sequence, Pending, and Fired counts untouched, so an
// instrumented run replays bit-identically to an uninstrumented one. A
// probe that lags several boundaries behind (sparse calendars) fires once,
// at the current time. Disabled cost is one slice-length check per Step.
func (e *Engine) Probe(every Time, fn func(Time)) {
	if !(every > 0) || math.IsInf(every, 0) {
		panic(fmt.Sprintf("sim: probe interval must be positive and finite, got %v", every))
	}
	if fn == nil {
		panic("sim: probe needs a callback")
	}
	e.probes = append(e.probes, probe{every: every, next: e.now + every, fn: fn})
}

// runProbes fires every probe whose boundary the clock has reached.
func (e *Engine) runProbes() {
	for i := range e.probes {
		p := &e.probes[i]
		if p.next > e.now {
			continue
		}
		for p.next <= e.now {
			p.next += p.every
		}
		p.fn(e.now)
	}
}

// Step fires the next event. It reports false when the calendar is empty.
func (e *Engine) Step() bool {
	if !e.nextLive() {
		return false
	}
	entry := e.popMin()
	if entry.when < e.now {
		panic("sim: time went backwards")
	}
	// Copy the callback out and release the slot before invoking it: the
	// callback is free to schedule new events into the recycled slot.
	s := &e.slots[entry.slot]
	fn, res, done := s.fn, s.res, s.done
	e.pending--
	e.freeSlot(entry.slot)
	e.now = entry.when
	e.fired++
	if res != nil {
		res.complete(done)
	} else {
		fn()
	}
	if len(e.probes) != 0 {
		e.runProbes()
	}
	return true
}

// Run fires events until the calendar is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with timestamps at or before t, then advances the
// clock to t. Events scheduled for later instants remain pending.
func (e *Engine) RunUntil(t Time) {
	for e.nextLive() && e.heap[0].when <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
		if len(e.probes) != 0 {
			e.runProbes()
		}
	}
}

// RunLimit fires at most n events; it reports how many actually fired.
func (e *Engine) RunLimit(n uint64) uint64 {
	var fired uint64
	for fired < n && e.Step() {
		fired++
	}
	return fired
}
