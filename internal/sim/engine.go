// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine is the substrate under the trace-driven cluster simulator of
// Section 5 of the paper: it owns the virtual clock, an event calendar
// ordered by (time, insertion sequence), and first-come-first-served
// resources with exact queueing and utilization accounting.
//
// The engine is single-threaded by design. Simulations of queueing systems
// need a total order over events to be reproducible, so all model code runs
// on the goroutine that calls Run, and two events scheduled for the same
// instant fire in the order they were scheduled.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is simulated time in seconds since the start of the run.
type Time = float64

// Event is a scheduled callback. It can be cancelled until it fires.
type Event struct {
	when   Time
	seq    uint64
	fn     func()
	index  int // position in the heap, -1 once removed
	cancel bool
}

// When returns the simulated time at which the event is scheduled to fire.
func (e *Event) When() Time { return e.when }

// Cancel prevents the event from firing. Cancelling an event that already
// fired or was already cancelled is a no-op.
func (e *Event) Cancel() { e.cancel = true }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator: a clock plus an event calendar.
// The zero value is not usable; call NewEngine.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	fired  uint64
}

// NewEngine returns an engine with the clock at zero and an empty calendar.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have fired so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are scheduled but have not fired.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule runs fn after delay units of simulated time. A negative delay is
// an error in the model; it panics rather than silently reordering history.
func (e *Engine) Schedule(delay Time, fn func()) *Event {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("sim: schedule with invalid delay %v at t=%v", delay, e.now))
	}
	return e.At(e.now+delay, fn)
}

// At runs fn at absolute simulated time t, which must not be in the past.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	ev := &Event{when: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// Step fires the next event. It reports false when the calendar is empty.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.cancel {
			continue
		}
		if ev.when < e.now {
			panic("sim: time went backwards")
		}
		e.now = ev.when
		e.fired++
		ev.fn()
		return true
	}
	return false
}

// Run fires events until the calendar is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with timestamps at or before t, then advances the
// clock to t. Events scheduled for later instants remain pending.
func (e *Engine) RunUntil(t Time) {
	for {
		ev := e.peek()
		if ev == nil || ev.when > t {
			break
		}
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// RunLimit fires at most n events; it reports how many actually fired.
func (e *Engine) RunLimit(n uint64) uint64 {
	var fired uint64
	for fired < n && e.Step() {
		fired++
	}
	return fired
}

func (e *Engine) peek() *Event {
	for len(e.events) > 0 {
		if e.events[0].cancel {
			heap.Pop(&e.events)
			continue
		}
		return e.events[0]
	}
	return nil
}
