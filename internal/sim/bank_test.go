package sim

import (
	"math/rand"
	"testing"
)

// TestChargeBankMatchesEager drives a banked resource and an eagerly charged
// twin through the same randomized schedule of deferred charges, Acquires,
// statistics reads, and resets, and requires bit-identical observables at
// every step. This is the exactness contract the flat gossip path rests on:
// deferring a charge and folding it in at the next use must reproduce the
// eager float operations in the eager order.
func TestChargeBankMatchesEager(t *testing.T) {
	const svc = 3e-6
	for seed := int64(1); seed <= 20; seed++ {
		eng := NewEngine()
		eager := NewResource(eng, "eager", 1)
		banked := NewResource(eng, "banked", 1)
		bank := NewChargeBank(svc, []*Resource{banked})
		rng := rand.New(rand.NewSource(seed))

		check := func(step int, what string, a, b float64) {
			if a != b {
				t.Fatalf("seed %d step %d: %s diverged: eager %v banked %v", seed, step, what, a, b)
			}
		}
		at := Time(0)
		for step := 0; step < 400; step++ {
			at += Time(rng.Float64() * 1e-5)
			step := step
			switch op := rng.Intn(10); {
			case op < 6: // deferred charge, possibly in the past or future
				chargeAt := at + Time(rng.NormFloat64()*1e-5)
				eng.At(at, func() {
					check(step, "ChargeAt",
						float64(eager.ChargeAt(chargeAt, svc)),
						float64(bank.ChargeAt(0, chargeAt)))
				})
			case op < 8: // real job with a completion event
				service := Time(rng.Float64() * 2e-5)
				eng.At(at, func() {
					check(step, "Acquire",
						float64(eager.Acquire(service, nil)),
						float64(banked.Acquire(service, nil)))
				})
			case op < 9: // statistics read forces a flush mid-stream
				eng.At(at, func() {
					check(step, "BusyTime", float64(eager.BusyTime()), float64(banked.BusyTime()))
					check(step, "Utilization", eager.Utilization(), banked.Utilization())
				})
			default: // measurement-interval reset (reads free and busy)
				eng.At(at, func() {
					eager.ResetStats()
					banked.ResetStats()
				})
			}
		}
		eng.Run()
		if got, want := banked.BusyTime(), eager.BusyTime(); got != want {
			t.Fatalf("seed %d: final busy diverged: eager %v banked %v", seed, want, got)
		}
		if got, want := banked.Completed(), eager.Completed(); got != want {
			t.Fatalf("seed %d: completions diverged: eager %d banked %d", seed, want, got)
		}
	}
}

// TestChargeBankSequentialChain pins the closed-form recurrence: back-to-back
// deferred charges chain exactly like back-to-back eager ChargeAt calls, with
// the resource untouched until the flush.
func TestChargeBankSequentialChain(t *testing.T) {
	eng := NewEngine()
	r := NewResource(eng, "r", 1)
	b := NewChargeBank(2e-6, []*Resource{r})

	c1 := Time(1e-6) + 2e-6
	if got := b.ChargeAt(0, 1e-6); got != c1 {
		t.Fatalf("first charge finish = %v, want %v", got, c1)
	}
	// Second charge arrives before the first finishes: it queues.
	c2 := c1 + 2e-6
	if got := b.ChargeAt(0, 2e-6); got != c2 {
		t.Fatalf("queued charge finish = %v, want %v", got, c2)
	}
	// Third arrives after an idle gap.
	c3 := Time(9e-6) + 2e-6
	if got := b.ChargeAt(0, 9e-6); got != c3 {
		t.Fatalf("idle-gap charge finish = %v, want %v", got, c3)
	}
	busy := Time(2e-6) + 2e-6 + 2e-6 // three charges replayed in order
	if got := r.BusyTime(); got != busy {
		t.Fatalf("busy after flush = %v, want %v", got, busy)
	}
	// The next real job starts no earlier than the flushed chain.
	if got := r.Acquire(1e-6, nil); got != c3+1e-6 {
		t.Fatalf("acquire finish = %v, want %v", got, c3+1e-6)
	}
}

func TestChargeBankPanics(t *testing.T) {
	eng := NewEngine()
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	multi := NewResource(eng, "multi", 2)
	expectPanic("multi-server", func() { NewChargeBank(1e-6, []*Resource{multi}) })
	r := NewResource(eng, "r", 1)
	NewChargeBank(1e-6, []*Resource{r})
	expectPanic("double bank", func() { NewChargeBank(1e-6, []*Resource{r}) })
	expectPanic("zero service", func() { NewChargeBank(0, []*Resource{NewResource(eng, "s", 1)}) })
}
