package sim

import "math"

// addRepeated returns the result of adding c to x exactly n times with
// IEEE-754 double rounding — bit-identical to
//
//	for ; n > 0; n-- { x += c }
//
// — in O(log(result/x)) time instead of O(n). The busy-time fold of a
// charge bank replays hundreds of millions of identical additions per
// large run; done naively the replay loop costs as much as the charging it
// replaces.
//
// The closed form rests on a property of round-to-nearest-even: for a
// fixed addend c and accumulators x in one binade (one exponent, so one
// ulp), the rounded increment fl(x+c)-x depends only on c's fractional
// part in ulps — not on x — except exactly at ties, where it depends only
// on the parity of the low mantissa bit, which itself advances by a
// constant each step. So the iteration advances by a constant step (or a
// constant two-step cycle) until the accumulator crosses a binade
// boundary, and each constant-step stretch collapses to one
// multiply-and-add that is exact in integer-valued ulp arithmetic.
//
// Rather than derive the regime, the implementation probes it: compute the
// next two steps; if they differ, take one step and re-probe (ties and
// regime boundaries), otherwise jump ahead to just below the next binade
// boundary. Negative or non-finite inputs fall back to the loop — the
// charge banks only ever fold non-negative busy times by positive service
// times.
func addRepeated(x, c Time, n uint64) Time {
	if n == 0 {
		return x
	}
	if !(x >= 0) || !(c > 0) || math.IsInf(float64(x), 0) || math.IsInf(float64(c), 0) {
		for ; n > 0; n-- {
			x += c
		}
		return x
	}
	for n > 0 {
		x1 := x + c
		s1 := x1 - x
		if s1 == 0 {
			// c vanishes against x: every further addition is identical.
			return x
		}
		x = x1
		n--
		if n == 0 {
			return x
		}
		s2 := (x + c) - x
		if s2 != s1 || s1 < 0 {
			continue // regime transition or tie cycle: step and re-probe
		}
		// Constant-step regime: all accumulators in x's binade advance by
		// exactly s1 per addition, and x+k*s1 is exact while it stays
		// below the next power of two (integer arithmetic in ulps). Jump
		// conservatively short of the boundary and let the loop mop up.
		bound := math.Ldexp(1, ilogb(float64(x))+1)
		k := uint64((bound - x) / s1)
		if k > 2 {
			k -= 2
			if k > n {
				k = n
			}
			y := x + float64(k)*s1
			if y < bound && (y-x) == float64(k)*s1 {
				x = y
				n -= k
				continue
			}
		}
		x += s1
		n--
	}
	return x
}

// ilogb is math.Ilogb restricted to positive finite inputs, without the
// special-case branches.
func ilogb(x float64) int {
	return math.Ilogb(x)
}
