package sim

import (
	"math/rand"
	"testing"
)

// TestPropertyFireOrderExact hammers the split calendar (staging buffer +
// heap) with a randomized mix of duplicate-time schedules, cancels, and
// nested scheduling, and checks the fire sequence is exactly minimal in
// (when, scheduling sequence): nondecreasing times, and schedule order
// within every tie. This is the property that makes the buffer invisible —
// any interleaving bug between the two structures shows up as an inversion.
func TestPropertyFireOrderExact(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()

		type fired struct {
			when Time
			ord  int
		}
		var got []fired
		ord := 0 // global schedule order, incremented per successful schedule

		// times come from a tiny discrete set so ties are the common case,
		// not the exception.
		times := []Time{0, 1e-6, 1e-6, 5e-6, 1e-3, 1e-3, 0.5}

		// ord increments on every Schedule call, in the order the engine
		// sees them — including nested schedules issued from callbacks —
		// so it is exactly the engine's scheduling sequence.
		var schedule func(depth int) Event
		schedule = func(depth int) Event {
			delay := times[rng.Intn(len(times))]
			myOrd := ord
			ord++
			return e.Schedule(delay, func() {
				got = append(got, fired{when: e.Now(), ord: myOrd})
				if depth < 3 && rng.Intn(4) == 0 {
					schedule(depth + 1)
				}
			})
		}

		var cancels []Event
		for i := 0; i < 2000; i++ {
			ev := schedule(0)
			if rng.Intn(10) == 0 {
				cancels = append(cancels, ev)
			}
		}
		for _, ev := range cancels {
			ev.Cancel()
		}
		e.Run()

		if e.Pending() != 0 {
			t.Fatalf("seed %d: %d events still pending after Run", seed, e.Pending())
		}
		for i := 1; i < len(got); i++ {
			a, b := got[i-1], got[i]
			if b.when < a.when {
				t.Fatalf("seed %d: time went backwards at %d: %v after %v", seed, i, b.when, a.when)
			}
			if b.when == a.when && b.ord < a.ord {
				t.Fatalf("seed %d: tie-break inversion at %d: ord %d fired after %d at t=%v",
					seed, i, a.ord, b.ord, b.when)
			}
		}
	}
}

// TestStagingOverflow forces the staging buffer to spill into the heap —
// more same-time events than stagedCap — and checks schedule order
// survives the flush.
func TestStagingOverflow(t *testing.T) {
	e := NewEngine()
	const n = stagedCap*3 + 5
	var got []int
	for i := 0; i < n; i++ {
		i := i
		e.Schedule(1, func() { got = append(got, i) })
	}
	e.Run()
	if len(got) != n {
		t.Fatalf("fired %d of %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("flush broke tie order: got[%d]=%d", i, v)
		}
	}
}

// TestStagedCancelIsDiscarded cancels an event while it sits in the
// staging buffer (not the heap) and checks it neither fires nor wedges the
// pop path.
func TestStagedCancelIsDiscarded(t *testing.T) {
	e := NewEngine()
	firedA, firedB := false, false
	ev := e.Schedule(1, func() { firedA = true })
	e.Schedule(2, func() { firedB = true })
	ev.Cancel()
	e.Run()
	if firedA {
		t.Fatal("cancelled staged event fired")
	}
	if !firedB {
		t.Fatal("live event lost behind a cancelled staged entry")
	}
}
