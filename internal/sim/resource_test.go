package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestResourceFCFSSingleServer(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "cpu", 1)
	var done []float64
	// Three jobs of 2s each arriving at t=0 must finish at 2, 4, 6.
	for i := 0; i < 3; i++ {
		r.Acquire(2, func() { done = append(done, e.Now()) })
	}
	e.Run()
	want := []float64{2, 4, 6}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("done = %v, want %v", done, want)
		}
	}
	if r.Completed() != 3 {
		t.Fatalf("Completed = %d, want 3", r.Completed())
	}
}

func TestResourceIdleThenBusy(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "disk", 1)
	var finish float64
	e.Schedule(10, func() {
		r.Acquire(5, func() { finish = e.Now() })
	})
	e.Run()
	if finish != 15 {
		t.Fatalf("finish = %v, want 15", finish)
	}
	// Busy 5s out of 15s elapsed.
	if got := r.Utilization(); math.Abs(got-5.0/15.0) > 1e-12 {
		t.Fatalf("Utilization = %v, want %v", got, 5.0/15.0)
	}
}

func TestResourceMultiServer(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "nic", 2)
	var done []float64
	for i := 0; i < 4; i++ {
		r.Acquire(3, func() { done = append(done, e.Now()) })
	}
	e.Run()
	// Two servers: pairs finish at 3 and 6.
	want := []float64{3, 3, 6, 6}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("done = %v, want %v", done, want)
		}
	}
}

func TestResourceZeroServersPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewResource with 0 servers did not panic")
		}
	}()
	NewResource(NewEngine(), "bad", 0)
}

func TestResourceNegativeServicePanics(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "cpu", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Acquire(-1) did not panic")
		}
	}()
	r.Acquire(-1, nil)
}

func TestResourceQueueAccounting(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "cpu", 1)
	for i := 0; i < 5; i++ {
		r.Acquire(1, nil)
	}
	if r.InSystem() != 5 {
		t.Fatalf("InSystem = %d, want 5", r.InSystem())
	}
	if r.MaxInSystem() != 5 {
		t.Fatalf("MaxInSystem = %d, want 5", r.MaxInSystem())
	}
	e.Run()
	if r.InSystem() != 0 {
		t.Fatalf("InSystem after run = %d, want 0", r.InSystem())
	}
	// Mean jobs in system for this pattern: at time t in [0,5), 5-t jobs are
	// present (5+4+3+2+1)/5 = 3.
	if got := r.MeanInSystem(); math.Abs(got-3) > 1e-12 {
		t.Fatalf("MeanInSystem = %v, want 3", got)
	}
}

func TestResourceResetStats(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "cpu", 1)
	r.Acquire(4, nil) // busy [0,4]
	e.RunUntil(2)
	r.ResetStats() // measurement starts at t=2; 2s of that job remain
	e.Run()
	if r.Completed() != 1 {
		t.Fatalf("Completed = %d, want 1", r.Completed())
	}
	// Elapsed 2s (from 2 to 4), busy 2s -> utilization 1.
	if got := r.Utilization(); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Utilization = %v, want 1", got)
	}
}

func TestResourceUtilizationNeverExceedsOne(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "cpu", 1)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		e.Schedule(rng.Float64()*10, func() {
			r.Acquire(rng.Float64(), nil)
		})
	}
	e.Run()
	if u := r.Utilization(); u > 1+1e-9 {
		t.Fatalf("Utilization = %v > 1", u)
	}
}

// Property: for any arrival pattern, (a) completions never overlap on a
// single server (sum of service = busy time), (b) every job completes, and
// (c) completion order equals arrival order for equal-priority FCFS with a
// single server.
func TestPropertyResourceConservation(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		r := NewResource(e, "cpu", 1)
		count := int(n%50) + 1
		var totalService float64
		completions := 0
		order := make([]int, 0, count)
		for i := 0; i < count; i++ {
			i := i
			at := rng.Float64() * 20
			svc := rng.Float64() * 2
			e.Schedule(at, func() {
				totalService += svc
				r.Acquire(svc, func() {
					completions++
					order = append(order, i)
				})
			})
		}
		e.Run()
		if completions != count {
			return false
		}
		if math.Abs(r.BusyTime()-totalService) > 1e-9 {
			return false
		}
		return r.Utilization() <= 1+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: with k servers the utilization is also bounded by 1 and the
// busy time equals the sum of service demands.
func TestPropertyMultiServerConservation(t *testing.T) {
	prop := func(seed int64, servers uint8) bool {
		k := int(servers%4) + 1
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		r := NewResource(e, "nic", k)
		var total float64
		for i := 0; i < 40; i++ {
			at := rng.Float64() * 10
			svc := rng.Float64()
			e.Schedule(at, func() {
				total += svc
				r.Acquire(svc, nil)
			})
		}
		e.Run()
		return math.Abs(r.BusyTime()-total) < 1e-9 && r.Utilization() <= 1+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// An M/M/1 sanity check: with Poisson arrivals at rate lambda and
// exponential service at rate mu, the measured utilization approaches
// rho = lambda/mu.
func TestResourceMM1Utilization(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "mm1", 1)
	rng := rand.New(rand.NewSource(7))
	lambda, mu := 0.5, 1.0
	const jobs = 200000
	var arrive func(i int, at float64)
	arrive = func(i int, at float64) {
		if i >= jobs {
			return
		}
		e.At(at, func() {
			r.Acquire(rng.ExpFloat64()/mu, nil)
			arrive(i+1, at+rng.ExpFloat64()/lambda)
		})
	}
	arrive(0, 0)
	e.Run()
	rho := lambda / mu
	if got := r.Utilization(); math.Abs(got-rho) > 0.02 {
		t.Fatalf("M/M/1 utilization = %v, want about %v", got, rho)
	}
	// Mean jobs in system for M/M/1 is rho/(1-rho) = 1.
	if got := r.MeanInSystem(); math.Abs(got-1) > 0.1 {
		t.Fatalf("M/M/1 mean jobs = %v, want about 1", got)
	}
}

// M/M/1 response time: the simulated mean time in system must match the
// closed form W = 1/(mu - lambda), the same formula the analytic model's
// Latency uses — a cross-validation of the DES against queueing theory.
func TestResourceMM1ResponseTime(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "mm1", 1)
	rng := rand.New(rand.NewSource(11))
	lambda, mu := 0.7, 1.0
	const jobs = 300000
	var totalW float64
	var arrive func(i int, at float64)
	arrive = func(i int, at float64) {
		if i >= jobs {
			return
		}
		e.At(at, func() {
			start := e.Now()
			r.Acquire(rng.ExpFloat64()/mu, func() {
				totalW += e.Now() - start
			})
			arrive(i+1, at+rng.ExpFloat64()/lambda)
		})
	}
	arrive(0, 0)
	e.Run()
	want := 1 / (mu - lambda) // = 3.333...
	got := totalW / jobs
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("M/M/1 mean response time = %v, want about %v", got, want)
	}
}

// ChargeAt must book work exactly as same-instant Acquires do — identical
// free times, busy time, and finish times — while firing no events. This is
// the equivalence that lets batched broadcasts charge endpoint resources
// arithmetically without perturbing utilization.
func TestResourceChargeAtMatchesAcquire(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		e := NewEngine()
		ra := NewResource(e, "a", 1)
		rc := NewResource(e, "c", 1)
		n := rng.Intn(8) + 1
		at := rng.Float64() * 5
		var finA, finC []float64
		e.At(at, func() {
			for i := 0; i < n; i++ {
				svc := 0.001 * float64(rng.Intn(9)+1)
				finA = append(finA, ra.Acquire(svc, nil))
				finC = append(finC, rc.ChargeAt(e.Now(), svc))
			}
		})
		e.Run()
		for i := range finA {
			if finA[i] != finC[i] {
				t.Fatalf("trial %d job %d: Acquire finish %v, ChargeAt finish %v",
					trial, i, finA[i], finC[i])
			}
		}
		if ra.BusyTime() != rc.BusyTime() {
			t.Fatalf("trial %d: busy %v vs %v", trial, ra.BusyTime(), rc.BusyTime())
		}
	}
}

// ChargeAt with a past arrival time must queue behind already-booked work,
// never rewind a server's free time.
func TestResourceChargeAtPastArrival(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "ni", 1)
	if got := r.ChargeAt(0, 2); got != 2 {
		t.Fatalf("first charge finish = %v, want 2", got)
	}
	// Arrives at t=1 while the server is busy until 2: starts at 2.
	if got := r.ChargeAt(1, 3); got != 5 {
		t.Fatalf("queued charge finish = %v, want 5", got)
	}
	// Arrives after the backlog drains: idles until 7.
	if got := r.ChargeAt(7, 1); got != 8 {
		t.Fatalf("idle charge finish = %v, want 8", got)
	}
	if r.BusyTime() != 6 {
		t.Fatalf("BusyTime = %v, want 6", r.BusyTime())
	}
}

// ChargeAt on a multi-server resource picks the earliest-free server, same
// as Acquire.
func TestResourceChargeAtMultiServer(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "nic", 2)
	fins := []Time{
		r.ChargeAt(0, 3), // server 0: [0,3]
		r.ChargeAt(0, 3), // server 1: [0,3]
		r.ChargeAt(0, 3), // server 0: [3,6]
		r.ChargeAt(0, 3), // server 1: [3,6]
	}
	want := []Time{3, 3, 6, 6}
	for i := range want {
		if fins[i] != want[i] {
			t.Fatalf("finishes = %v, want %v", fins, want)
		}
	}
}

func TestResourceChargeAtNegativeServicePanics(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "cpu", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("ChargeAt(-1) did not panic")
		}
	}()
	r.ChargeAt(0, -1)
}
