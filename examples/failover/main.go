// Failover: demonstrate the availability property of Section 4 — L2S has
// no single point of failure, while LARD's front-end is one. One node
// crashes halfway through each run; the table shows how much of the
// workload each server still completes.
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"

	"repro/internal/server"
	"repro/internal/trace"
)

func main() {
	workload, err := trace.Generate(trace.GenSpec{
		Name:      "failover",
		Files:     3000,
		AvgFileKB: 25,
		Requests:  120000,
		AvgReqKB:  15,
		Alpha:     0.9,
		LocalityP: 0.3,
		Seed:      5,
	})
	if err != nil {
		log.Fatal(err)
	}

	const nodes = 8
	fmt.Printf("one node crashes after 50%% of the workload (%d-node cluster)\n\n", nodes)
	fmt.Printf("%-32s %10s %10s %12s\n", "scenario", "served", "lost", "throughput")

	cases := []struct {
		label string
		sys   server.System
		fail  int
	}{
		{"l2s, no failure", server.L2SServer, -1},
		{"l2s, worker node 3 crashes", server.L2SServer, 3},
		{"lard, back-end 3 crashes", server.LARDServer, 3},
		{"lard, FRONT-END crashes", server.LARDServer, 0},
	}
	for _, c := range cases {
		cfg := server.DefaultConfig(c.sys, nodes)
		cfg.FailNode = c.fail
		cfg.FailAtFrac = 0.5
		r, err := server.Run(cfg, workload)
		if err != nil {
			log.Fatal(err)
		}
		total := r.Completed + r.Aborted
		fmt.Printf("%-32s %9.1f%% %9.1f%% %9.0f/s\n",
			c.label,
			float64(r.Completed)/float64(total)*100,
			float64(r.Aborted)/float64(total)*100,
			r.Throughput)
	}

	fmt.Println("\nL2S loses only the requests in flight at the crashed node and")
	fmt.Println("keeps serving on the survivors; when LARD's front-end dies, the")
	fmt.Println("whole service dies with it — the single point of failure the")
	fmt.Println("paper designed L2S to eliminate.")
}
