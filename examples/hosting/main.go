// Hosting: the scenario the paper's introduction motivates — a WWW hosting
// service whose working set (many renters' pages) dwarfs a single node's
// memory. Compares all three servers across working-set sizes and shows
// where locality-conscious distribution pays off most.
//
//	go run ./examples/hosting
package main

import (
	"fmt"
	"log"

	"repro/internal/server"
	"repro/internal/trace"
)

func main() {
	const nodes = 16

	fmt.Printf("hosting service on %d nodes, 32 MB cache per node\n", nodes)
	fmt.Printf("%-28s %12s %12s %12s %10s\n",
		"working set", "traditional", "lard", "l2s", "l2s gain")

	// Grow the hosted catalog: from "fits in one memory" to "only the
	// cluster-wide cache can hold it".
	for _, files := range []int{1000, 4000, 16000, 48000} {
		workload, err := trace.Generate(trace.GenSpec{
			Name:      fmt.Sprintf("hosting-%d", files),
			Files:     files,
			AvgFileKB: 30,
			Requests:  150000,
			AvgReqKB:  18,
			Alpha:     0.8, // hosting spreads traffic over many renters
			LocalityP: 0.25,
			Seed:      9,
		})
		if err != nil {
			log.Fatal(err)
		}
		ws := float64(files) * 30 / 1024

		var thr [3]float64
		for i, sys := range []server.System{server.Traditional, server.LARDServer, server.L2SServer} {
			cfg := server.DefaultConfig(sys, nodes)
			r, err := server.Run(cfg, workload)
			if err != nil {
				log.Fatal(err)
			}
			thr[i] = r.Throughput
		}
		fmt.Printf("%6d files (%5.1f GB)     %9.0f/s %9.0f/s %9.0f/s %9.1fx\n",
			files, ws/1024, thr[0], thr[1], thr[2], thr[2]/thr[0])
	}

	fmt.Println("\nAs the hosted working set outgrows one node's memory, the")
	fmt.Println("traditional server becomes disk-bound while L2S keeps serving")
	fmt.Println("from the cluster-wide cache — the paper's core observation.")

	// The real hosting case: all four of the paper's sites rented onto one
	// cluster. Merging the traces interleaves their request streams and
	// concatenates their catalogs (1.7 GB of content).
	fmt.Println("\nall four paper traces hosted on the same 16-node cluster:")
	var renters []*trace.Trace
	for _, spec := range trace.PaperTraces() {
		renters = append(renters, trace.MustGenerate(spec.Scaled(0.05)))
	}
	merged, err := trace.Merge("all-renters", 1, renters...)
	if err != nil {
		log.Fatal(err)
	}
	ch := trace.Characterize(merged)
	fmt.Printf("  %d files, %.1f GB total, %d requests\n",
		ch.CatalogFiles, ch.CatalogMB/1024, ch.NumRequests)
	for _, sys := range []server.System{server.Traditional, server.LARDServer, server.L2SServer} {
		cfg := server.DefaultConfig(sys, nodes)
		r, err := server.Run(cfg, merged)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s %8.0f req/s  (%.1f%% misses)\n",
			r.System, r.Throughput, r.MissRate*100)
	}
}
