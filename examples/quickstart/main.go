// Quickstart: simulate an L2S cluster server over a synthetic WWW workload
// and print the headline metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/server"
	"repro/internal/trace"
)

func main() {
	// A workload: 5000 files averaging 25 KB, Zipf popularity, with the
	// popular files smaller than average (requests average 14 KB).
	workload, err := trace.Generate(trace.GenSpec{
		Name:      "quickstart",
		Files:     5000,
		AvgFileKB: 25,
		Requests:  100000,
		AvgReqKB:  14,
		Alpha:     0.9,
		LocalityP: 0.3,
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// An 8-node cluster with 32 MB of cache per node, running the L2S
	// request distribution algorithm with the paper's parameters (overload
	// threshold T=20 connections, underload threshold t=10, load broadcast
	// on a drift of 4 connections).
	cfg := server.DefaultConfig(server.L2SServer, 8)

	result, err := server.Run(cfg, workload)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("L2S on %d nodes serving %q:\n", result.Nodes, workload.Name)
	fmt.Printf("  throughput:       %8.0f requests/s\n", result.Throughput)
	fmt.Printf("  cache miss rate:  %8.1f%%\n", result.MissRate*100)
	fmt.Printf("  forwarded:        %8.1f%% of requests\n", result.ForwardedFrac*100)
	fmt.Printf("  CPU idle:         %8.1f%%\n", result.CPUIdle*100)
	fmt.Printf("  control traffic:  %8d messages\n", result.ControlMessages)

	// The same workload on a traditional fewest-connections server, for
	// contrast: every node caches independently, so the effective cache is
	// one node's memory rather than the cluster's.
	tradCfg := server.DefaultConfig(server.Traditional, 8)
	trad, err := server.Run(tradCfg, workload)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntraditional server on the same cluster: %0.f requests/s (%.1f%% misses)\n",
		trad.Throughput, trad.MissRate*100)
	fmt.Printf("locality-conscious distribution gain: %.1fx\n",
		result.Throughput/trad.Throughput)
}
