// Livecluster: run the native L2S server (real HTTP, real gossip, real
// hand-offs) inside one process, fire traffic at it, and watch the
// distribution algorithm work: files stick to their server sets, requests
// entering elsewhere are handed off, and a node crash only costs the
// requests in flight there.
//
//	go run ./examples/livecluster
package main

import (
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"repro/internal/native"
	"repro/internal/zipf"
)

func main() {
	cluster, err := native.Start(
		native.WithNodes(4),
		native.WithStore(native.SyntheticStore(500, 16, 1)),
		native.WithCacheMB(8),
		native.WithMissPenalty(time.Millisecond), // a pretend disk
		native.WithHealth(native.HealthOptions{
			HeartbeatEvery: 100 * time.Millisecond,
			SyncEvery:      250 * time.Millisecond,
			SuspectAfter:   1,
			DeadAfter:      3,
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Shutdown()

	fmt.Println("4-node L2S cluster is live:")
	for i, u := range cluster.URLs() {
		fmt.Printf("  node %d at %s\n", i, u)
	}

	// Phase 1: drive Zipf-popular traffic round robin for a few seconds.
	fmt.Println("\nphase 1: 3 seconds of Zipf traffic through round-robin DNS")
	drive(cluster, 3*time.Second, 48, 500)
	report(cluster)

	// Phase 2: locality in action — one file, many entry points, one
	// server.
	fmt.Println("\nphase 2: the same file requested via every node")
	for i := 0; i < cluster.Len(); i++ {
		resp, err := http.Get(cluster.URLs()[i] + "/files/f/42")
		if err != nil {
			log.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		fmt.Printf("  entered at node %d -> served by node %s (forwarded by %q)\n",
			i, resp.Header.Get("X-Served-By"), resp.Header.Get("X-Forwarded-By"))
	}

	// Phase 3: crash a node; the survivors keep serving.
	fmt.Println("\nphase 3: crashing node 2, then 2 more seconds of traffic")
	if err := cluster.Stop(2); err != nil {
		log.Fatal(err)
	}
	drive(cluster, 2*time.Second, 48, 500)
	report(cluster)

	// Phase 4: the crashed node rejoins — heartbeats re-detect it, and
	// anti-entropy restores its server-set replica.
	fmt.Println("\nphase 4: restarting node 2, then 2 more seconds of traffic")
	if err := cluster.Restart(2); err != nil {
		log.Fatal(err)
	}
	drive(cluster, 2*time.Second, 48, 500)
	report(cluster)
	fmt.Println("\nno front-end, no single point of failure: the cluster")
	fmt.Println("kept serving with node 2 gone, and took it back on return.")
}

// drive fires Zipf-distributed requests using every node but the crashed
// ones as entry points.
func drive(cluster *native.Cluster, d time.Duration, workers, files int) {
	dist := zipf.New(0.9, int64(files))
	stop := time.Now().Add(d)
	var wg sync.WaitGroup
	var completed, errs int64
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			client := &http.Client{Timeout: 5 * time.Second}
			for time.Now().Before(stop) {
				file := dist.Sample(rng) - 1
				// A real client whose connection fails retries against the
				// next address DNS gave it.
				var resp *http.Response
				var err error
				for attempt := 0; attempt < cluster.Len(); attempt++ {
					url := fmt.Sprintf("%s/files/f/%d", cluster.NextURL(), file)
					resp, err = client.Get(url)
					if err == nil {
						break
					}
				}
				mu.Lock()
				if err != nil {
					errs++
				} else {
					completed++
				}
				mu.Unlock()
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}(int64(w) + 1)
	}
	wg.Wait()
	mu.Lock()
	fmt.Printf("  %d completed, %d errors (%.0f req/s)\n",
		completed, errs, float64(completed)/d.Seconds())
	mu.Unlock()
}

func report(cluster *native.Cluster) {
	for i := 0; i < cluster.Len(); i++ {
		s := cluster.Node(i).Snapshot()
		fmt.Printf("  node %d: served=%-6d handed-off=%-6d received=%-6d hit-rate=%.0f%%\n",
			i, s.Served, s.Proxied, s.Received, s.HitRate*100)
	}
}
