// Modelstudy: use the analytic queuing model directly to explore when
// locality-conscious request distribution is worth it — the Section 3
// analysis, driven through the public model API.
//
//	go run ./examples/modelstudy
package main

import (
	"fmt"

	"repro/internal/queuemodel"
)

func main() {
	p := queuemodel.DefaultParams() // Table 1 defaults: 16 nodes, 128 MB

	fmt.Println("locality gain (conscious/oblivious) across the parameter plane")
	fmt.Printf("%-10s", "Hlo\\S(KB)")
	sizes := []float64{4, 16, 48, 96}
	for _, s := range sizes {
		fmt.Printf("%8.0f", s)
	}
	fmt.Println()
	for _, hlo := range []float64{0.3, 0.5, 0.7, 0.8, 0.9, 0.95} {
		fmt.Printf("%-10.2f", hlo)
		for _, s := range sizes {
			q := p
			q.AvgFileKB = s
			gain := q.Conscious(hlo).RequestsPerSec / q.Oblivious(hlo).RequestsPerSec
			fmt.Printf("%8.2f", gain)
		}
		fmt.Println()
	}

	// Where does each configuration bottleneck?
	fmt.Println("\nbottlenecks of the locality-conscious server (Hlo=0.7):")
	for _, s := range sizes {
		q := p
		q.AvgFileKB = s
		r := q.Conscious(0.7)
		fmt.Printf("  S=%3.0fKB: %8.0f req/s, bound by %s\n",
			s, r.RequestsPerSec, r.Bottleneck)
	}

	// How much does replication help at a moderate hit rate?
	fmt.Println("\nreplication trade-off at Hlo=0.7, S=8KB:")
	for _, r := range []float64{0, 0.15, 0.5, 1} {
		q := p
		q.AvgFileKB = 8
		q.Replication = r
		hlc, h := q.HitRates(0.7)
		fmt.Printf("  R=%3.0f%%: throughput %8.0f req/s, Hlc=%.3f, forwarded Q=%.2f\n",
			r*100, q.Conscious(0.7).RequestsPerSec, hlc, q.ForwardFraction(h))
	}

	// Cluster scaling: the bound grows linearly until the shared router
	// saturates.
	fmt.Println("\ncluster scaling at Hlo=0.8, S=32KB:")
	for _, n := range []int{1, 4, 16, 64, 256} {
		q := p
		q.AvgFileKB = 32
		q.Nodes = n
		r := q.Conscious(0.8)
		fmt.Printf("  N=%4d: %9.0f req/s (%s-bound)\n", n, r.RequestsPerSec, r.Bottleneck)
	}
}
