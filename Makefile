# Build and verification targets for the cluster-server reproduction.

GO ?= go

.PHONY: all build test check race fmt vet bench

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# check is the tier-1 gate: formatting, static analysis, a full build, and
# the whole test suite.
check: fmt vet build test

# race exercises the deterministic sweep runner and the simulator under the
# race detector — the parallel-equals-sequential guarantee is only as good
# as its synchronization.
race:
	$(GO) test -race ./internal/runner/... ./internal/server/...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .
