# Build and verification targets for the cluster-server reproduction.

GO ?= go

.PHONY: all build test check race chaos fmt vet bench bench-hot bench-json bench-check bench-scale bench-scale-headline bench-scale-check bench-scale-counts cover fuzz profile

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# check is the tier-1 gate: formatting, static analysis, a full build, the
# whole test suite, the hot-path performance floor, and the N x F scaling
# floor.
check: fmt vet build test bench-check bench-scale-check

# race exercises the deterministic sweep runner and the simulator under the
# race detector — the parallel-equals-sequential guarantee is only as good
# as its synchronization — plus the pooled simulation core and the live
# native cluster (gossip, failure detection, hand-off retry).
race:
	$(GO) test -race ./internal/sim/... ./internal/cache/... ./internal/netsim/... ./internal/runner/... ./internal/server/... ./internal/native/...

# chaos runs the fault-injection tests (node kill mid-replay, seeded gossip
# drop/delay/duplicate, crash recovery) under the race detector, twice.
chaos:
	$(GO) test -race -count=2 -run 'TestChaos' ./internal/native/...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# bench-hot runs the allocation-tracked hot-path microbenchmarks (event
# calendar, FCFS resource, LRU, end-to-end server.Run) at full benchtime.
bench-hot:
	$(GO) test ./internal/perf -bench=. -run=^$$

# bench-json regenerates the committed hot-path baseline that future
# performance PRs diff against, and records the same measurement as a
# labeled point in the BENCH_hotpath.json trajectory.
BENCH_LABEL ?= HEAD

bench-json:
	$(GO) run ./cmd/benchjson -o BENCH_simcore.json -hotpath BENCH_hotpath.json -label $(BENCH_LABEL)

# bench-check reruns the suite and fails if any benchmark's ns/op regressed
# more than 10% against the committed baseline.
bench-check:
	$(GO) run ./cmd/benchjson -compare BENCH_simcore.json

# bench-scale regenerates the committed scaling baseline: full L2S cluster
# runs over the N x F grid (N up to 1024, catalogs up to 10^7 files),
# recording ns/request, peak heap bytes per node, and the deterministic
# event/message counts. The flagship N=1024, F=10^7, 10^8-request point is
# only rerun by bench-scale-headline (it takes ~20 minutes); plain
# bench-scale carries the committed headline entry forward.
bench-scale:
	$(GO) run ./cmd/benchjson -scale BENCH_scale.json

bench-scale-headline:
	$(GO) run ./cmd/benchjson -scale BENCH_scale.json -headline

# bench-scale-check reruns the grid (never the headline) and fails on a
# >25% ns/request or bytes/node regression at any point — or on ANY change
# in the deterministic event/message counts, which catches complexity
# regressions wall-clock noise would hide.
bench-scale-check:
	$(GO) run ./cmd/benchjson -scale-compare BENCH_scale.json

# bench-scale-counts reruns the grid and fails on ANY change in the
# deterministic event/message/gossip counts, skipping the ns/request and
# bytes/node tolerances entirely: it is noise-free and safe to run as a
# blocking CI gate on shared hardware where wall-clock checks flake.
bench-scale-counts:
	$(GO) run ./cmd/benchjson -scale-compare BENCH_scale.json -counts-only

# profile captures pprof CPU and heap profiles of a representative
# large-cluster run (N=1024 L2S over the clarknet workload): the input the
# hot-path optimization passes are tuned against. Inspect with
# `go tool pprof cpu.prof`.
profile: build
	$(GO) run ./cmd/clustersim -system l2s -trace clarknet -nodes 1024 -scale 1 \
		-cpuprofile cpu.prof -memprofile mem.prof > /dev/null
	@echo "profile: wrote cpu.prof and mem.prof"

# cover enforces a per-package statement-coverage floor on the model and
# infrastructure packages (commands are exercised end to end, not unit by
# unit, so they are exempt).
COVER_MIN ?= 60
COVER_PKGS = ./internal/cache ./internal/core ./internal/fastmap \
             ./internal/netsim ./internal/obs \
             ./internal/queuemodel ./internal/runner ./internal/server \
             ./internal/shotnoise ./internal/sim ./internal/stats \
             ./internal/trace ./internal/zipf

# The shot-noise synthesizer and its analytic miss model are the conformance
# anchors of the non-stationary studies: they carry a stricter per-file
# statement floor, computed from the merged profile.
COVER_STRICT_MIN ?= 90

cover:
	@$(GO) test -coverprofile=cover.out $(COVER_PKGS) | tee cover.txt
	@awk -v min=$(COVER_MIN) ' \
		/coverage:/ { \
			pct = $$0; sub(/.*coverage: /, "", pct); sub(/%.*/, "", pct); \
			if (pct + 0 < min) { printf "FAIL: %s below %s%% floor\n", $$2, min; bad = 1 } \
		} \
		END { exit bad }' cover.txt
	@echo "cover: every package at or above $(COVER_MIN)%"
	@awk -v min=$(COVER_STRICT_MIN) ' \
		NR > 1 { \
			split($$1, a, ":"); f = a[1]; \
			if (f ~ /internal\/shotnoise\// || f ~ /internal\/queuemodel\/shotnoise\.go/) { \
				total[f] += $$2; if ($$3 > 0) cov[f] += $$2 } \
		} \
		END { \
			if (length(total) == 0) { print "FAIL: no shot-noise files in profile"; exit 1 } \
			for (f in total) { pct = 100 * cov[f] / total[f]; \
				printf "cover: %-45s %.1f%% (floor %s%%)\n", f, pct, min; \
				if (pct < min) { printf "FAIL: %s below %s%% floor\n", f, min; bad = 1 } } \
			exit bad }' cover.out

# fuzz gives each fuzz target a short budget on top of its checked-in seed
# corpus; crashers land in testdata/fuzz/ as regression tests.
FUZZTIME ?= 5s

fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzParseCLFLine -fuzztime=$(FUZZTIME) ./internal/trace
	$(GO) test -run=^$$ -fuzz=FuzzRead -fuzztime=$(FUZZTIME) ./internal/trace
	$(GO) test -run=^$$ -fuzz=FuzzSolveFiles -fuzztime=$(FUZZTIME) ./internal/zipf
	$(GO) test -run=^$$ -fuzz=FuzzParseProfiles -fuzztime=$(FUZZTIME) ./internal/server
	$(GO) test -run=^$$ -fuzz=FuzzParseSpec -fuzztime=$(FUZZTIME) ./internal/policy
	$(GO) test -run=^$$ -fuzz=FuzzParseGenSpec -fuzztime=$(FUZZTIME) ./internal/trace
